// Quickstart: build the paper's Fig. 1 toy temporal graph, count all
// 36 δ-temporal motifs with δ = 10s, and inspect a few cells.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"hare"
)

func main() {
	// The Fig. 1 graph: five nodes a..e, twelve timestamped directed edges.
	const (
		a hare.NodeID = iota
		b
		c
		d
		e
	)
	g := hare.FromEdges([]hare.Edge{
		{From: e, To: d, Time: 1},
		{From: a, To: c, Time: 4},
		{From: e, To: c, Time: 6},
		{From: a, To: c, Time: 8},
		{From: d, To: a, Time: 9},
		{From: d, To: c, Time: 10},
		{From: a, To: b, Time: 11},
		{From: d, To: e, Time: 14},
		{From: a, To: c, Time: 15},
		{From: c, To: d, Time: 17},
		{From: e, To: d, Time: 18},
		{From: d, To: e, Time: 21},
	})

	// Count every motif within a 10-second window.
	res, err := hare.Count(g, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counted %d motif instances in %v using %d workers\n\n",
		res.Matrix.Total(), res.Elapsed, res.Workers)
	res.Matrix.Write(os.Stdout)

	// The three instances the paper's introduction points out:
	fmt.Println()
	for _, name := range []string{"M63", "M46", "M65"} {
		l := hare.MustLabel(name)
		fmt.Printf("%s (%s motif): %d instance(s)\n", name, l.Category(), res.Matrix.At(l))
	}

	// Per-node view: which motifs does node a participate in as center?
	profile, err := hare.CountNode(g, a, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnode a centers %d star, %d pair and %d triangle instance(s)\n",
		profile.CategoryTotal(hare.CategoryStar),
		profile.CategoryTotal(hare.CategoryPair),
		profile.CategoryTotal(hare.CategoryTri))
}
