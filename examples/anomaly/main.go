// Anomaly detection via motif significance: raw motif counts mean little on
// their own — a million stars may be perfectly normal for a graph with hubs.
// The paper's motivating applications (fraud and anomaly detection) instead
// ask which counts are *surprising*, and the standard answer (Milo et al.,
// Science 2002) is to compare against ensembles of randomised null graphs:
//
//	z = (real − mean_null) / std_null
//
// This walkthrough plants a coordinated ping-pong attack — tight a⇄b message
// bursts, a classic account-takeover signature — inside an organic message
// network, then lets the parallel significance engine find it:
//
//  1. TimeShuffle nulls keep who-talks-to-whom and randomise only *when*:
//     a large z here means the timing itself is anomalous.
//  2. DegreeRewire nulls keep everyone's activity level and randomise the
//     wiring: a large z here means the *structure* is anomalous.
//
// The planted attack is temporal (the pairs already exist; the bursts are
// the anomaly), so it lights up the time-shuffle null specifically — and the
// example checks the empirical p-value bottoms out at its resolution floor.
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hare"
	"hare/internal/gen"
)

const (
	delta   = 120 // two minutes: the attack cycles in seconds
	samples = 40
	bursts  = 120
)

func main() {
	// Organic message traffic: hub-skewed, mildly conversational. Kept
	// temporally diffuse (long horizon, short bursts) so the interesting
	// signal is the one we plant.
	base, err := gen.Generate(gen.Config{
		Name: "messages", Nodes: 2000, Edges: 40_000, TimeSpan: 3_000_000,
		ZipfS: 1.6, ReplyProb: 0.03, RepeatProb: 0.05, BurstLen: 1, Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Plant the attack: compromised accounts exchanging rapid ping-pong
	// probes (a→b, b→a, a→b within seconds).
	r := rand.New(rand.NewSource(5))
	edges := append([]hare.Edge(nil), base.Edges()...)
	for i := 0; i < bursts; i++ {
		a := hare.NodeID(r.Intn(2000))
		b := hare.NodeID(r.Intn(2000))
		if a == b {
			b = (b + 1) % 2000
		}
		t0 := hare.Timestamp(r.Int63n(3_000_000))
		edges = append(edges,
			hare.Edge{From: a, To: b, Time: t0},
			hare.Edge{From: b, To: a, Time: t0 + 7},
			hare.Edge{From: a, To: b, Time: t0 + 15},
		)
	}
	g := hare.FromEdges(edges)
	fmt.Printf("graph: %d nodes, %d edges (planted %d ping-pong bursts)\n\n",
		g.NumNodes(), g.NumEdges(), bursts)

	// Significance against both null models. The engine draws and counts
	// the ensembles in parallel; the seed pins the exact samples, so this
	// output is reproducible at any worker count.
	for _, model := range []hare.NullModel{hare.NullTimeShuffle, hare.NullDegreeRewire} {
		rep, err := hare.Significance(g, delta, hare.SignificanceOptions{
			Model: model, Trials: samples, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("null=%v (%d samples, %d workers)\n", model, rep.Trials, rep.Workers)
		fmt.Printf("  %-6s %12s %14s %10s %8s\n", "motif", "real", "null mean", "z", "p")
		for _, lc := range rep.TopSignificant(3) {
			l := lc.Label
			p := rep.PUpperAt(l)
			if rep.ZScore(l) < 0 {
				p = rep.PLowerAt(l)
			}
			fmt.Printf("  %-6s %12d %14.1f %10.1f %8.4f\n",
				l, lc.Count, rep.MeanAt(l), rep.ZScore(l), p)
		}
	}

	// The ping-pong motif M65 (a→b, b→a, a→b) is the attack's fingerprint:
	// hugely over-represented against time-shuffled nulls, because only the
	// timing — not the wiring — was planted.
	rep, err := hare.Significance(g, delta, hare.SignificanceOptions{
		Model: hare.NullTimeShuffle, Trials: samples, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	m65 := hare.MustLabel("M65")
	fmt.Printf("\nverdict: M65 z=%.1f against time-shuffle (p=%.4f, floor %.4f)\n",
		rep.ZScore(m65), rep.PUpperAt(m65), 1.0/float64(samples+1))
	if rep.ZScore(m65) < 3 {
		log.Fatal("planted attack not detected — significance engine regression")
	}
}
