package hare_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"hare"
)

func TestStreamAPIMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	edges := make([]hare.Edge, 0, 300)
	for i := 0; i < 300; i++ {
		u := hare.NodeID(r.Intn(12))
		v := hare.NodeID(r.Intn(12))
		if u == v {
			v = (v + 1) % 12
		}
		edges = append(edges, hare.Edge{From: u, To: v, Time: r.Int63n(100)})
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Time < edges[j].Time })

	sc, err := hare.NewStream(25)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := sc.Add(e.From, e.To, e.Time); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := hare.Count(hare.FromEdges(edges), 25, hare.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	got := sc.Matrix()
	if !got.Equal(&batch.Matrix) {
		t.Fatalf("stream and batch disagree: %v", got.Diff(&batch.Matrix))
	}
}

func TestSignificanceAPI(t *testing.T) {
	// Tight ping-pong bursts on a sparse background: strongly significant
	// against the time-shuffle null.
	r := rand.New(rand.NewSource(62))
	b := hare.NewBuilder(0)
	for i := 0; i < 800; i++ {
		u := hare.NodeID(r.Intn(40))
		v := hare.NodeID(r.Intn(40))
		if u == v {
			v = (v + 1) % 40
		}
		_ = b.AddEdge(u, v, r.Int63n(1_000_000))
	}
	for i := 0; i < 40; i++ {
		u := hare.NodeID(40 + r.Intn(5))
		v := hare.NodeID(45 + r.Intn(5))
		t0 := r.Int63n(1_000_000)
		_ = b.AddEdge(u, v, t0)
		_ = b.AddEdge(v, u, t0+3)
		_ = b.AddEdge(u, v, t0+8)
	}
	g := b.Build()
	rep, err := hare.Significance(g, 60, hare.SignificanceOptions{
		Model: hare.NullTimeShuffle, Trials: 10, Seed: 3, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	z := rep.ZScore(hare.MustLabel("M65"))
	if !(z > 3 || math.IsInf(z, 1)) {
		t.Fatalf("planted M65 z = %.2f, want > 3", z)
	}
}

func TestNullSampleAPI(t *testing.T) {
	g := hare.FromEdges([]hare.Edge{
		{From: 0, To: 1, Time: 1}, {From: 1, To: 2, Time: 2}, {From: 2, To: 0, Time: 3},
	})
	s, err := hare.NullSample(g, hare.NullDegreeRewire, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumEdges() != g.NumEdges() {
		t.Fatal("sample changed edge count")
	}
}
