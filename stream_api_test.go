package hare_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"hare"
	"hare/internal/brute"
)

func TestStreamAPIMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	edges := make([]hare.Edge, 0, 300)
	for i := 0; i < 300; i++ {
		u := hare.NodeID(r.Intn(12))
		v := hare.NodeID(r.Intn(12))
		if u == v {
			v = (v + 1) % 12
		}
		edges = append(edges, hare.Edge{From: u, To: v, Time: r.Int63n(100)})
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Time < edges[j].Time })

	sc, err := hare.NewStream(25)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := sc.Add(e.From, e.To, e.Time); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := hare.Count(hare.FromEdges(edges), 25, hare.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	got := sc.Matrix()
	if !got.Equal(&batch.Matrix) {
		t.Fatalf("stream and batch disagree: %v", got.Diff(&batch.Matrix))
	}
}

// randomStream yields a sorted random edge list through the public types.
func randomStream(r *rand.Rand, nodes, n int, span int64) []hare.Edge {
	edges := make([]hare.Edge, 0, n)
	for i := 0; i < n; i++ {
		u := hare.NodeID(r.Intn(nodes))
		v := hare.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % hare.NodeID(nodes)
		}
		edges = append(edges, hare.Edge{From: u, To: v, Time: r.Int63n(span)})
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Time < edges[j].Time })
	return edges
}

// TestStreamBatchEquivalence feeds the same randomized streams to the batch
// counter (hare.Count), the sequential online path (Add), and the parallel
// batched path (AddBatch) and requires bit-identical matrices from all
// three — the contract that lets a live service swap ingest paths freely.
func TestStreamBatchEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	for trial := 0; trial < 10; trial++ {
		nodes := 4 + r.Intn(16)
		edges := randomStream(r, nodes, 200+r.Intn(600), 1+r.Int63n(150))
		delta := hare.Timestamp(r.Intn(50))
		workers := 2 + r.Intn(6)
		batchLen := 1 + r.Intn(len(edges))

		seq, err := hare.NewStream(delta)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range edges {
			if err := seq.Add(e.From, e.To, e.Time); err != nil {
				t.Fatal(err)
			}
		}
		par, err := hare.NewStreamCounter(hare.StreamOptions{Delta: delta, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(edges); lo += batchLen {
			hi := min(lo+batchLen, len(edges))
			if err := par.AddBatch(edges[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		batch, err := hare.Count(hare.FromEdges(edges), delta)
		if err != nil {
			t.Fatal(err)
		}
		seqM, parM := seq.Matrix(), par.Matrix()
		if !parM.Equal(&seqM) {
			t.Fatalf("trial %d: AddBatch vs Add diff %v", trial, parM.Diff(&seqM))
		}
		if !parM.Equal(&batch.Matrix) {
			t.Fatalf("trial %d: AddBatch vs Count diff %v", trial, parM.Diff(&batch.Matrix))
		}
	}
}

// TestSlidingStreamAPI checks the sliding-window mode against brute force
// over exactly the window's edge subset.
func TestSlidingStreamAPI(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	edges := randomStream(r, 10, 400, 300)
	const delta = 40
	sc, err := hare.NewStreamCounter(hare.StreamOptions{
		Delta: delta, Mode: hare.StreamSliding, Workers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(edges); lo += 100 {
		hi := min(lo+100, len(edges))
		if err := sc.AddBatch(edges[lo:hi]); err != nil {
			t.Fatal(err)
		}
		got, err := sc.WindowMatrix()
		if err != nil {
			t.Fatal(err)
		}
		lastT := edges[hi-1].Time
		var live []hare.Edge
		for _, e := range edges[:hi] {
			if e.Time >= lastT-delta {
				live = append(live, e)
			}
		}
		want := brute.Count(hare.FromEdges(live), delta)
		if !got.Equal(&want) {
			t.Fatalf("after %d edges: window diff %v", hi, got.Diff(&want))
		}
	}
	if err := sc.Advance(edges[len(edges)-1].Time + 2*delta); err != nil {
		t.Fatal(err)
	}
	w, err := sc.WindowMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if w.Total() != 0 {
		t.Fatalf("window not empty after draining Advance: %d", w.Total())
	}
}

func TestSignificanceAPI(t *testing.T) {
	// Tight ping-pong bursts on a sparse background: strongly significant
	// against the time-shuffle null.
	r := rand.New(rand.NewSource(62))
	b := hare.NewBuilder(0)
	for i := 0; i < 800; i++ {
		u := hare.NodeID(r.Intn(40))
		v := hare.NodeID(r.Intn(40))
		if u == v {
			v = (v + 1) % 40
		}
		_ = b.AddEdge(u, v, r.Int63n(1_000_000))
	}
	for i := 0; i < 40; i++ {
		u := hare.NodeID(40 + r.Intn(5))
		v := hare.NodeID(45 + r.Intn(5))
		t0 := r.Int63n(1_000_000)
		_ = b.AddEdge(u, v, t0)
		_ = b.AddEdge(v, u, t0+3)
		_ = b.AddEdge(u, v, t0+8)
	}
	g := b.Build()
	rep, err := hare.Significance(g, 60, hare.SignificanceOptions{
		Model: hare.NullTimeShuffle, Trials: 10, Seed: 3, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	z := rep.ZScore(hare.MustLabel("M65"))
	if !(z > 3 || math.IsInf(z, 1)) {
		t.Fatalf("planted M65 z = %.2f, want > 3", z)
	}
}

func TestNullSampleAPI(t *testing.T) {
	g := hare.FromEdges([]hare.Edge{
		{From: 0, To: 1, Time: 1}, {From: 1, To: 2, Time: 2}, {From: 2, To: 0, Time: 3},
	})
	s, err := hare.NullSample(g, hare.NullDegreeRewire, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumEdges() != g.NumEdges() {
		t.Fatal("sample changed edge count")
	}
}
