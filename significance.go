package hare

import (
	"hare/internal/nullmodel"
)

// NullModel selects a randomisation strategy for significance testing.
type NullModel = nullmodel.Model

// Null model constants.
const (
	// NullTimeShuffle permutes timestamps, preserving static structure.
	NullTimeShuffle = nullmodel.TimeShuffle
	// NullDegreeRewire rewires targets, preserving degree sequences and
	// timestamps.
	NullDegreeRewire = nullmodel.DegreeRewire
)

// ParseNullModel parses a null-model name ("time-shuffle" or
// "degree-rewire"), as printed by NullModel.String.
func ParseNullModel(s string) (NullModel, error) { return nullmodel.ParseModel(s) }

// SignificanceOptions configures Significance: null model, sample count
// (Trials), RNG seed, and worker parallelism. Sampling is deterministic —
// sample t always draws from seed Seed + t·7919 — so a fixed seed gives
// bit-identical statistics at any Workers value.
type SignificanceOptions = nullmodel.Options

// SignificanceReport holds real counts and null-model statistics. ZScore
// ranks motifs by over/under-representation in standard deviations;
// PUpperAt/PLowerAt report add-one-smoothed empirical tail p-values.
type SignificanceReport = nullmodel.Report

// Ensemble is the parallel significance engine behind Significance:
// it generates and counts N null samples concurrently (one in-place
// sampler per worker, O(1) graphs allocated per ensemble) and aggregates
// per-motif moments deterministically. Use it directly to reuse a
// configuration across graphs.
type Ensemble = nullmodel.Ensemble

// Significance counts motifs in g and in randomised null samples, returning
// per-motif z-scores and empirical p-values — the standard way to decide
// which motif counts are structurally meaningful rather than chance
// (Milo et al., Science 2002). Samples are drawn and counted in parallel
// across opts.Workers goroutines; results do not depend on the worker count.
func Significance(g *Graph, delta Timestamp, opts SignificanceOptions) (*SignificanceReport, error) {
	return nullmodel.Significance(g, delta, opts)
}

// NullSample draws one randomised reference graph under the given model.
func NullSample(g *Graph, model NullModel, seed int64) (*Graph, error) {
	return nullmodel.Sample(g, model, seed)
}

// NullSampler draws null samples in place, reusing one scratch graph across
// draws — the allocation-free counterpart of NullSample for ensembles. The
// graph returned by Sample is overwritten by the next call. Not safe for
// concurrent use; Significance runs one per worker internally.
type NullSampler = nullmodel.Sampler

// NewNullSampler returns a NullSampler drawing from g under the given model.
func NewNullSampler(g *Graph, model NullModel) *NullSampler {
	return nullmodel.NewSampler(g, model)
}
