package hare_test

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hare"
)

// Count a temporal triangle: three edges cycling 0→1→2→0 within the
// δ window land in cell M26 of the motif matrix.
func ExampleCount() {
	g := hare.FromEdges([]hare.Edge{
		{From: 0, To: 1, Time: 10},
		{From: 1, To: 2, Time: 20},
		{From: 2, To: 0, Time: 30},
	})
	res, err := hare.Count(g, 600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cycles:", res.Matrix.At(hare.MustLabel("M26")))
	fmt.Println("total:", res.Matrix.Total())
	// Output:
	// cycles: 1
	// total: 1
}

// A center with three in-window edges to three distinct neighbors is a
// 4-node star — exactly the triples the 36-motif grid discards.
func ExampleCountStar4() {
	g := hare.FromEdges([]hare.Edge{
		{From: 0, To: 1, Time: 10},
		{From: 0, To: 2, Time: 20},
		{From: 3, To: 0, Time: 30},
	})
	c, err := hare.CountStar4(g, 600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("4-node stars:", c.Total())
	// Output:
	// 4-node stars: 1
}

// Count an arbitrary 3-edge motif from a compact spec: variable names
// and spelling are free-form — specs canonicalize, so the rotated
// "y->z; z->x; x->y" is the same triangle and the same count.
func ExampleCountMotif() {
	g := hare.FromEdges([]hare.Edge{
		{From: 0, To: 1, Time: 10},
		{From: 1, To: 2, Time: 20},
		{From: 2, To: 0, Time: 30},
	})
	spec, err := hare.ParseSpec("y->z; z->x; x->y")
	if err != nil {
		log.Fatal(err)
	}
	n, err := hare.CountMotif(g, spec, 600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d\n", spec.Canonical(), n)
	// Output:
	// a->b; b->c; c->a: 1
}

// Online counting: feed edges in time order, read exact counts at any
// point. Counts agree bit-for-bit with a batch Count of the same edges.
func ExampleNewStreamCounter() {
	sc, err := hare.NewStreamCounter(hare.StreamOptions{Delta: 600})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range []hare.Edge{
		{From: 0, To: 1, Time: 10},
		{From: 1, To: 2, Time: 20},
		{From: 2, To: 0, Time: 30},
	} {
		if err := sc.Add(e.From, e.To, e.Time); err != nil {
			log.Fatal(err)
		}
	}
	m := sc.Matrix()
	fmt.Println("cycles so far:", m.At(hare.MustLabel("M26")))
	// Output:
	// cycles so far: 1
}

// Significance testing: is the observed count of a motif higher than
// chance? The tight 0→1→2→0 cycle survives in the real graph but almost
// never in time-shuffled null samples, so M26 is over-represented. A
// fixed seed gives bit-identical statistics at any worker count.
func ExampleSignificance() {
	g := hare.FromEdges([]hare.Edge{
		{From: 0, To: 1, Time: 10},
		{From: 1, To: 2, Time: 20},
		{From: 2, To: 0, Time: 30},
		{From: 3, To: 4, Time: 5000},
		{From: 4, To: 5, Time: 9000},
		{From: 5, To: 3, Time: 13000},
		{From: 1, To: 3, Time: 17000},
		{From: 2, To: 4, Time: 21000},
	})
	rep, err := hare.Significance(g, 600, hare.SignificanceOptions{
		Model:  hare.NullTimeShuffle,
		Trials: 100,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	l := hare.MustLabel("M26")
	fmt.Printf("real: %d null mean: %.2f p_upper: %.2f\n",
		rep.Real.At(l), rep.MeanAt(l), rep.PUpperAt(l))
	// Output:
	// real: 1 null mean: 0.05 p_upper: 0.06
}

// Ensemble is the engine behind Significance: configure it once and run
// it across graphs. The same options give the same statistics.
func ExampleEnsemble() {
	g := hare.FromEdges([]hare.Edge{
		{From: 0, To: 1, Time: 10},
		{From: 1, To: 2, Time: 20},
		{From: 2, To: 0, Time: 30},
		{From: 3, To: 4, Time: 5000},
		{From: 4, To: 5, Time: 9000},
		{From: 5, To: 3, Time: 13000},
		{From: 1, To: 3, Time: 17000},
		{From: 2, To: 4, Time: 21000},
	})
	ens := hare.Ensemble{Model: hare.NullTimeShuffle, Samples: 100, Seed: 1}
	rep, err := ens.Run(g, 600)
	if err != nil {
		log.Fatal(err)
	}
	l := hare.MustLabel("M26")
	fmt.Printf("real: %d null mean: %.2f\n", rep.Real.At(l), rep.MeanAt(l))
	// Output:
	// real: 1 null mean: 0.05
}

// Snapshots round-trip through any io.Writer/io.Reader; the encoding is
// canonical, so the same graph always produces the same bytes.
func ExampleWriteSnapshot() {
	g := hare.FromEdges([]hare.Edge{
		{From: 0, To: 1, Time: 10},
		{From: 1, To: 2, Time: 20},
	})
	var buf bytes.Buffer
	if err := hare.WriteSnapshot(&buf, g); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	g2, err := hare.ReadSnapshot(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d bytes -> %d nodes, %d edges\n", size, g2.NumNodes(), g2.NumEdges())
	// Output:
	// 832 bytes -> 3 nodes, 2 edges
}

// Save a graph once, then mmap it back without parsing: LoadSnapshot
// verifies every checksum and aliases the columns zero-copy on 64-bit
// little-endian hosts.
func ExampleSaveSnapshot() {
	dir, err := os.MkdirTemp("", "hare-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	g := hare.FromEdges([]hare.Edge{
		{From: 0, To: 1, Time: 10},
		{From: 1, To: 2, Time: 20},
		{From: 2, To: 0, Time: 30},
	})
	path := filepath.Join(dir, "graph.hare")
	if err := hare.SaveSnapshot(path, g); err != nil {
		log.Fatal(err)
	}
	g2, err := hare.LoadSnapshot(path)
	if err != nil {
		log.Fatal(err)
	}
	res, err := hare.Count(g2, 600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cycles:", res.Matrix.At(hare.MustLabel("M26")))
	// Output:
	// cycles: 1
}
