package hare_test

import (
	"testing"

	"hare"
)

// approxTestGraph is small enough that the default plan saturates every
// stratum, so the "estimate" is the exact count with a zero-width interval
// — the graceful-degradation contract at API level.
func approxTestGraph() *hare.Graph {
	return hare.FromEdges([]hare.Edge{
		{From: 0, To: 1, Time: 1},
		{From: 2, To: 0, Time: 2},
		{From: 0, To: 3, Time: 3},
		{From: 1, To: 2, Time: 4},
		{From: 2, To: 3, Time: 5},
		{From: 3, To: 0, Time: 6},
	})
}

func TestCountStar4ApproxAPI(t *testing.T) {
	g := approxTestGraph()
	exact, err := hare.CountStar4(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hare.CountStar4Approx(g, 10, hare.ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Total.Estimate, float64(exact.Total()); got != want {
		t.Fatalf("saturated estimate = %v, want exact %v", got, want)
	}
	if res.Total.Low != res.Total.High {
		t.Fatalf("saturated interval not zero-width: [%v, %v]", res.Total.Low, res.Total.High)
	}
	if res.ExactStrata != res.Strata {
		t.Fatalf("want all strata exact, got %d/%d", res.ExactStrata, res.Strata)
	}
	for i, iv := range res.Cells {
		if iv.Estimate != float64(exact[i]) {
			t.Fatalf("cell %d = %v, want %v", i, iv.Estimate, exact[i])
		}
	}
	if _, err := hare.CountStar4Approx(nil, 10, hare.ApproxOptions{}); err == nil {
		t.Fatal("want error for nil graph")
	}
	if _, err := hare.CountStar4Approx(g, -1, hare.ApproxOptions{}); err == nil {
		t.Fatal("want error for negative δ")
	}
	if _, err := hare.CountStar4Approx(g, 10, hare.ApproxOptions{Epsilon: 1.5}); err == nil {
		t.Fatal("want error for epsilon out of range")
	}
}

func TestCountPath4ApproxAPI(t *testing.T) {
	g := approxTestGraph()
	exact, err := hare.CountPath4(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hare.CountPath4Approx(g, 10, hare.ApproxOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Total.Estimate, float64(exact.Total()); got != want {
		t.Fatalf("saturated estimate = %v, want exact %v", got, want)
	}
	if _, err := hare.CountPath4Approx(nil, 10, hare.ApproxOptions{}); err == nil {
		t.Fatal("want error for nil graph")
	}
	if _, err := hare.CountPath4Approx(g, -1, hare.ApproxOptions{}); err == nil {
		t.Fatal("want error for negative δ")
	}
}

func TestCountMotifApproxAPI(t *testing.T) {
	g := approxTestGraph()
	spec, err := hare.ParseSpec("a->b; b->c; c->a")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := hare.CountMotif(g, spec, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hare.CountMotifApprox(g, spec, 10, hare.ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Total.Estimate, float64(exact); got != want {
		t.Fatalf("saturated estimate = %v, want exact %v", got, want)
	}
	if _, err := hare.CountMotifApprox(nil, spec, 10, hare.ApproxOptions{}); err == nil {
		t.Fatal("want error for nil graph")
	}
	if _, err := hare.CountMotifApprox(g, nil, 10, hare.ApproxOptions{}); err == nil {
		t.Fatal("want error for nil spec")
	}
	if _, err := hare.CountMotifApprox(g, spec, -1, hare.ApproxOptions{}); err == nil {
		t.Fatal("want error for negative δ")
	}
}

// TestApproxAPIDeterministicWorkers pins the public determinism contract:
// same options, different Workers, identical result.
func TestApproxAPIDeterministicWorkers(t *testing.T) {
	g := approxTestGraph()
	base, err := hare.CountPath4Approx(g, 10, hare.ApproxOptions{Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		got, err := hare.CountPath4Approx(g, 10, hare.ApproxOptions{Seed: 3, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if got.Total != base.Total {
			t.Fatalf("workers=%d total %+v != workers=1 total %+v", w, got.Total, base.Total)
		}
	}
}
