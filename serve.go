package hare

import (
	"context"
	"fmt"

	"hare/internal/approx"
	"hare/internal/higher"
	"hare/internal/live"
	"hare/internal/nullmodel"
	"hare/internal/server"
	"hare/internal/temporal"
)

// Server is the hared concurrent query service: a graph registry (each
// named dataset loaded once and shared immutably across requests), an LRU
// result cache with singleflight deduplication keyed by canonicalized
// request, and a weighted-semaphore admission controller bounding the
// worker budget of concurrent counting jobs. Construct with NewServer,
// register datasets, then serve Handler with net/http:
//
//	srv, _ := hare.NewServer(hare.ServerOptions{})
//	srv.Register("wiki", "wikitalk edges", func() (*hare.Graph, error) {
//		return hare.LoadFile("wiki.txt.gz", hare.LoadOptions{})
//	})
//	http.ListenAndServe(":8315", srv.Handler())
type Server = server.Server

// ServerOptions configures NewServer. Leave Backend nil to count with this
// package's Count/CountStar4/CountPath4/Significance — the default and
// normally the only sensible choice.
type ServerOptions = server.Options

// QueryRequest is the canonical form of one service query; the HTTP
// handlers, the result cache and client generators all share it.
type QueryRequest = server.Request

// QueryKind names a query family (one per /v1 endpoint).
type QueryKind = server.Kind

// Query kinds.
const (
	QueryCount = server.KindCount
	QueryStar4 = server.KindStar4
	QueryPath4 = server.KindPath4
	QuerySig   = server.KindSig
)

// DatasetInfo describes one registered dataset, as listed by /v1/datasets.
type DatasetInfo = server.DatasetInfo

// LiveDataset is a named mutable dataset: an appendable edge log with an
// exact online sliding-window motif counter, a monotonic version advancing
// per accepted ingest batch, and a z-score watch pipeline over the window
// counts. Create with NewLiveDataset, register with Server.RegisterLive,
// feed through POST /v1/ingest and watch through GET /v1/watch
// (docs/LIVE.md).
type LiveDataset = live.Dataset

// LiveOptions configures NewLiveDataset.
type LiveOptions = live.Options

// LiveAlert is one significance alert emitted by a live dataset's watch
// pipeline: a motif whose sliding-window count crossed the trailing
// ensemble z-score threshold.
type LiveAlert = live.Alert

// LiveIngestResult reports one accepted ingest batch.
type LiveIngestResult = live.IngestResult

// NewLiveDataset returns an empty live dataset at version 1.
func NewLiveDataset(name string, opts LiveOptions) (*LiveDataset, error) {
	return live.New(name, opts)
}

// FileLoader returns a dataset loader for Server.Register that wires
// .hare snapshots into the registry: a text path prefers a "<path>.hare"
// sibling snapshot when present (falling back to the text file, logged,
// if the snapshot is corrupt or from a newer format version), and a
// ".hare" path loads the snapshot directly, falling back to a text
// sibling only when the snapshot's format version is newer than this
// binary supports. logf (nil to discard) receives the fallback log lines;
// opts applies to text parsing only. The loader also reports which branch
// produced the graph ("snapshot <path>", "snapshot-sibling <snap>",
// "text <path>", "text-fallback <cand>") — register it with
// Server.RegisterSourced and /v1/datasets shows the provenance.
func FileLoader(path string, opts LoadOptions, logf func(format string, args ...any)) func() (*Graph, string, error) {
	return server.FileLoader(path, opts, logf)
}

// NewServer returns a query service counting with this package's public
// APIs. Datasets are registered afterwards via Register/RegisterGraph.
func NewServer(opts ServerOptions) (*Server, error) {
	if opts.Backend == nil {
		opts.Backend = libraryBackend{}
	}
	return server.New(opts)
}

// LocalBackend returns the in-process counting backend NewServer installs
// when ServerOptions.Backend is nil. A shard worker (internal/shard)
// plugs it in so routed count sub-requests run the exact code path a
// single-node hared uses; a coordinator replaces it with the
// scatter/gather backend instead.
func LocalBackend() server.Backend { return libraryBackend{} }

// libraryBackend adapts the public counting APIs to the server's Backend
// seam, so served answers are bit-identical to direct library calls. It
// computes in-process and ignores the flight context (the admission
// semaphore already handled cancellation before compute starts).
type libraryBackend struct{}

func (libraryBackend) options(req server.Request) []Option {
	opts := []Option{WithWorkers(req.Workers)}
	// normalize canonicalizes an explicit thrd=0 to unset (both mean
	// "auto"), so ThrdSet alone decides — no Thrd != 0 special case that
	// could make the response's DegreeThreshold echo disagree with the
	// request.
	if req.ThrdSet {
		opts = append(opts, WithDegreeThreshold(req.Thrd))
	}
	return opts
}

func (b libraryBackend) Count(_ context.Context, g *temporal.Graph, req server.Request) (server.CountAnswer, error) {
	opts := b.options(req)
	if req.Motif != "" {
		l, err := ParseLabel(req.Motif)
		if err != nil {
			return server.CountAnswer{}, err
		}
		opts = append(opts, WithOnly(l.Category()))
	}
	res, err := Count(g, Timestamp(req.Delta), opts...)
	if err != nil {
		return server.CountAnswer{}, err
	}
	return server.CountAnswer{
		Matrix:          res.Matrix,
		Workers:         res.Workers,
		DegreeThreshold: res.DegreeThreshold,
	}, nil
}

func (b libraryBackend) Star4(_ context.Context, g *temporal.Graph, req server.Request) (higher.Star4Counter, error) {
	return CountStar4(g, Timestamp(req.Delta), b.options(req)...)
}

func (b libraryBackend) Path4(_ context.Context, g *temporal.Graph, req server.Request) (higher.PathCounter, error) {
	return CountPath4(g, Timestamp(req.Delta), b.options(req)...)
}

func (b libraryBackend) Query(_ context.Context, g *temporal.Graph, req server.Request) (uint64, error) {
	spec, err := ParseSpec(req.Spec) // canonical after normalize; reparse is cheap
	if err != nil {
		return 0, err
	}
	return CountMotif(g, spec, Timestamp(req.Delta), b.options(req)...)
}

// approxOptions maps a normalized approx-mode request onto the estimator
// knobs. Workers is the admission weight the server resolved — a resource
// hint only, never part of the answer.
func approxOptions(req server.Request) ApproxOptions {
	return ApproxOptions{
		Epsilon:    req.Epsilon,
		Confidence: req.Conf,
		Seed:       req.Seed,
		Samples:    req.Samples,
		Workers:    req.Workers,
	}
}

func (b libraryBackend) Star4Approx(_ context.Context, g *temporal.Graph, req server.Request) (*approx.Result, error) {
	return CountStar4Approx(g, Timestamp(req.Delta), approxOptions(req))
}

func (b libraryBackend) Path4Approx(_ context.Context, g *temporal.Graph, req server.Request) (*approx.Result, error) {
	return CountPath4Approx(g, Timestamp(req.Delta), approxOptions(req))
}

func (b libraryBackend) QueryApprox(_ context.Context, g *temporal.Graph, req server.Request) (*approx.Result, error) {
	spec, err := ParseSpec(req.Spec) // canonical after normalize; reparse is cheap
	if err != nil {
		return nil, err
	}
	return CountMotifApprox(g, spec, Timestamp(req.Delta), approxOptions(req))
}

func (b libraryBackend) Significance(_ context.Context, g *temporal.Graph, req server.Request) (*nullmodel.Report, error) {
	model, err := ParseNullModel(req.Model)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	return Significance(g, Timestamp(req.Delta), SignificanceOptions{
		Model:   model,
		Trials:  req.Samples,
		Seed:    req.Seed,
		Workers: req.Workers,
	})
}
