package hare_test

import (
	"testing"

	"hare"
)

func TestCountStar4API(t *testing.T) {
	g := hare.FromEdges([]hare.Edge{
		{From: 0, To: 1, Time: 1},
		{From: 2, To: 0, Time: 2},
		{From: 0, To: 3, Time: 3},
	})
	c, err := hare.CountStar4(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() != 1 {
		t.Fatalf("total = %d, want 1", c.Total())
	}
	if _, err := hare.CountStar4(nil, 10); err == nil {
		t.Fatal("want error for nil graph")
	}
	if _, err := hare.CountStar4(g, -5); err == nil {
		t.Fatal("want error for negative δ")
	}
}

func TestCountPath4API(t *testing.T) {
	g := hare.FromEdges([]hare.Edge{
		{From: 0, To: 1, Time: 1},
		{From: 1, To: 2, Time: 2},
		{From: 2, To: 3, Time: 3},
	})
	c, err := hare.CountPath4(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() != 1 {
		t.Fatalf("total = %d, want 1", c.Total())
	}
	if _, err := hare.CountPath4(nil, 10); err == nil {
		t.Fatal("want error for nil graph")
	}
	if _, err := hare.CountPath4(g, -1); err == nil {
		t.Fatal("want error for negative δ")
	}
}
