package hare_test

import (
	"math/rand"
	"testing"

	"hare"
)

func randomAPIGraph(seed int64, nodes, edges int, span int64) *hare.Graph {
	r := rand.New(rand.NewSource(seed))
	b := hare.NewBuilder(edges)
	for i := 0; i < edges; i++ {
		u := hare.NodeID(r.Intn(nodes))
		v := hare.NodeID(r.Intn(nodes))
		if u == v {
			v = (v + 1) % hare.NodeID(nodes)
		}
		_ = b.AddEdge(u, v, r.Int63n(span))
	}
	return b.Build()
}

// The public higher-order counters accept the shared Option list; any
// worker/threshold combination must match the default result exactly.
func TestHigherOrderOptionsAPI(t *testing.T) {
	g := randomAPIGraph(51, 12, 150, 40)
	wantS, err := hare.CountStar4(g, 12)
	if err != nil {
		t.Fatal(err)
	}
	wantP, err := hare.CountPath4(g, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]hare.Option{
		{hare.WithWorkers(1)},
		{hare.WithWorkers(4)},
		{hare.WithWorkers(4), hare.WithDegreeThreshold(1)},
		{hare.WithWorkers(4), hare.WithDegreeThreshold(-1)},
	} {
		gotS, err := hare.CountStar4(g, 12, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if gotS != wantS {
			t.Fatalf("CountStar4 diverged under %d options", len(opts))
		}
		gotP, err := hare.CountPath4(g, 12, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if gotP != wantP {
			t.Fatalf("CountPath4 diverged under %d options", len(opts))
		}
	}
}

// Significance exposes the ensemble statistics — p-values included — and
// is worker-count invariant through the public surface too.
func TestSignificanceEnsembleAPI(t *testing.T) {
	g := randomAPIGraph(52, 25, 600, 1500)
	opts := hare.SignificanceOptions{Model: hare.NullTimeShuffle, Trials: 12, Seed: 4}
	opts.Workers = 1
	a, err := hare.Significance(g, 40, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 7
	b, err := hare.Significance(g, 40, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range hare.AllLabels() {
		if a.ZScore(l) != b.ZScore(l) || a.PUpperAt(l) != b.PUpperAt(l) || a.PLowerAt(l) != b.PLowerAt(l) {
			t.Fatalf("%v: statistics depend on worker count", l)
		}
		if p := a.PUpperAt(l); p <= 0 || p > 1 {
			t.Fatalf("%v: p-value %v out of range", l, p)
		}
	}
	// The Ensemble alias runs the same engine directly.
	e := &hare.Ensemble{Model: hare.NullTimeShuffle, Samples: 12, Seed: 4, Workers: 2}
	c, err := e.Run(g, 40)
	if err != nil {
		t.Fatal(err)
	}
	if c.Real != a.Real || c.Mean != a.Mean {
		t.Fatal("Ensemble alias disagrees with Significance")
	}
}

// The in-place NullSampler matches NullSample draw-for-draw.
func TestNullSamplerAPI(t *testing.T) {
	g := randomAPIGraph(53, 10, 120, 300)
	s := hare.NewNullSampler(g, hare.NullDegreeRewire)
	for seed := int64(0); seed < 4; seed++ {
		want, err := hare.NullSample(g, hare.NullDegreeRewire, seed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Sample(seed)
		if err != nil {
			t.Fatal(err)
		}
		we, ge := want.Edges(), got.Edges()
		if len(we) != len(ge) {
			t.Fatal("edge counts differ")
		}
		for i := range we {
			if we[i] != ge[i] {
				t.Fatalf("seed %d: edge %d differs", seed, i)
			}
		}
	}
}

func TestParseNullModelAPI(t *testing.T) {
	m, err := hare.ParseNullModel("degree-rewire")
	if err != nil || m != hare.NullDegreeRewire {
		t.Fatalf("ParseNullModel = %v, %v", m, err)
	}
	if _, err := hare.ParseNullModel("nope"); err == nil {
		t.Fatal("want error for unknown model")
	}
}
