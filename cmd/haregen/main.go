// Command haregen generates the synthetic temporal-graph suite (or one
// dataset) as edge-list files or binary .hare snapshots.
//
// Usage:
//
//	haregen -list
//	haregen -dataset wikitalk [-scale 1.0] [-seed 0] -out wikitalk.txt.gz
//	haregen -dataset wikitalk -out wikitalk.hare   # binary snapshot (docs/FORMAT.md)
//	haregen -all [-scale 0.1] -outdir ./data
//	haregen -nodes 1000 -edges 50000 -span 1000000 -out custom.txt
//
// The output format follows the -out extension: ".hare" writes the
// mmap-able snapshot format that hared loads without parsing, anything
// else a "u v t" edge list, gzipped when the path ends in ".gz".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hare/internal/buildinfo"
	"hare/internal/gen"
	"hare/internal/temporal"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list the named datasets and exit")
		dataset = flag.String("dataset", "", "named dataset to generate")
		all     = flag.Bool("all", false, "generate the full 16-dataset suite")
		scale   = flag.Float64("scale", 1.0, "scale factor for nodes/edges/time span")
		seed    = flag.Int64("seed", 0, "seed offset added to the dataset's base seed")
		out     = flag.String("out", "", "output file (required with -dataset or custom; .gz or .hare ok)")
		outdir  = flag.String("outdir", ".", "output directory for -all")
		nodes   = flag.Int("nodes", 0, "custom graph: node count")
		edges   = flag.Int("edges", 0, "custom graph: edge count")
		span    = flag.Int64("span", 0, "custom graph: time span in seconds")
		zipf    = flag.Float64("zipf", 1.8, "custom graph: Zipf popularity exponent (>1)")
		reply   = flag.Float64("reply", 0.2, "custom graph: reply probability")
		repeat  = flag.Float64("repeat", 0.1, "custom graph: repeat probability")
		triad   = flag.Float64("triad", 0.05, "custom graph: triadic-closure probability")
		burst   = flag.Int("burst", 5, "custom graph: mean burst length")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("haregen", buildinfo.Version())
		return
	}
	if *scale <= 0 {
		usageErr("-scale must be > 0 (got %g)", *scale)
	}
	if *nodes < 0 || *edges < 0 || *span < 0 {
		usageErr("-nodes/-edges/-span must be >= 0")
	}
	if err := run(*list, *dataset, *all, *scale, *seed, *out, *outdir,
		*nodes, *edges, *span, *zipf, *reply, *repeat, *triad, *burst); err != nil {
		fmt.Fprintln(os.Stderr, "haregen:", err)
		os.Exit(1)
	}
}

// usageErr reports a flag-validation failure with usage text and exits 2.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "haregen: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func run(list bool, dataset string, all bool, scale float64, seed int64, out, outdir string,
	nodes, edges int, span int64, zipf, reply, repeat, triad float64, burst int) error {
	switch {
	case list:
		for _, c := range gen.Datasets {
			fmt.Printf("%-16s nodes=%-8d edges=%-9d span=%ds\n", c.Name, c.Nodes, c.Edges, c.TimeSpan)
		}
		return nil
	case all:
		for _, c := range gen.Datasets {
			cfg := gen.Scaled(c, scale)
			cfg.Seed += seed
			g, err := gen.Generate(cfg)
			if err != nil {
				return err
			}
			path := filepath.Join(outdir, c.Name+".txt.gz")
			if err := temporal.SaveFile(path, g); err != nil {
				return err
			}
			fmt.Printf("%-16s -> %s (%d edges)\n", c.Name, path, g.NumEdges())
		}
		return nil
	case dataset != "":
		if out == "" {
			return fmt.Errorf("-out required with -dataset")
		}
		cfg, err := gen.DatasetByName(dataset)
		if err != nil {
			return err
		}
		cfg = gen.Scaled(cfg, scale)
		cfg.Seed += seed
		g, err := gen.Generate(cfg)
		if err != nil {
			return err
		}
		if err := temporal.SaveFile(out, g); err != nil {
			return err
		}
		fmt.Printf("%s -> %s (%d nodes, %d edges)\n", dataset, out, g.NumNodes(), g.NumEdges())
		return nil
	case nodes > 0 && edges > 0 && span > 0:
		if out == "" {
			return fmt.Errorf("-out required for custom generation")
		}
		cfg := gen.Config{
			Name: "custom", Nodes: nodes, Edges: edges, TimeSpan: span,
			ZipfS: zipf, ReplyProb: reply, RepeatProb: repeat, TriadProb: triad,
			BurstLen: burst, Seed: seed,
		}
		g, err := gen.Generate(cfg)
		if err != nil {
			return err
		}
		if err := temporal.SaveFile(out, g); err != nil {
			return err
		}
		fmt.Printf("custom -> %s (%d nodes, %d edges)\n", out, g.NumNodes(), g.NumEdges())
		return nil
	default:
		return fmt.Errorf("nothing to do: use -list, -all, -dataset, or -nodes/-edges/-span")
	}
}
