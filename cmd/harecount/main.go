// Command harecount counts δ-temporal motifs in an edge-list file.
//
// Usage:
//
//	harecount -input edges.txt [-delta 600] [-workers 0] [-thrd 0]
//	          [-motif M26] [-query "a->b; a->c; a->d"] [-relabel]
//	          [-comma] [-stats] [-check] [-load-workers 0]
//	          [-epsilon 0.05] [-conf 0.95] [-seed 0] [-samples 0]
//
// The input format is one "u v t" edge per line (whitespace or, with
// -comma, comma separated; '#'/'%' comments ignored; ".gz" transparent).
// With -motif only that motif's count is printed; with -query a 3-edge
// motif spec (compact text or JSON form, see docs/QUERY.md) is compiled
// and counted; otherwise the full 6×6 matrix is written in the paper's
// Fig. 2 layout.
//
// -epsilon switches -query to the sampling estimator (docs/APPROX.md):
// the output is an estimate with a confidence interval instead of the
// exact count. -conf, -seed and -samples refine it and are only valid
// alongside -epsilon.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hare"
	"hare/internal/buildinfo"
)

func main() {
	var (
		input   = flag.String("input", "", "edge-list file (required; .gz ok)")
		delta   = flag.Int64("delta", 600, "time window δ in the input's time units")
		workers = flag.Int("workers", 0, "worker goroutines (0 = all CPUs, 1 = sequential FAST)")
		thrd    = flag.Int("thrd", 0, "HARE degree threshold (0 = auto top-20, negative = flat)")
		only    = flag.String("motif", "", "print only this motif's count (e.g. M26)")
		queryF  = flag.String("query", "", `count a 3-edge motif spec (e.g. "a->b; b->c; c->a"; JSON form ok)`)
		relabel = flag.Bool("relabel", false, "relabel arbitrary node ids to a dense space")
		comma   = flag.Bool("comma", false, "treat commas as field separators")
		stats   = flag.Bool("stats", false, "print graph statistics before counting")
		check   = flag.Bool("check", false, "validate internal graph invariants after loading")
		loadW   = flag.Int("load-workers", 0, "parallel ingestion workers (0 = all CPUs, 1 = sequential)")
		epsilon = flag.Float64("epsilon", 0, "approximate -query with this relative-error target in (0,1); 0 = exact")
		conf    = flag.Float64("conf", 0, "confidence level for -epsilon intervals (0 = 0.95)")
		seed    = flag.Int64("seed", 0, "sampling seed for -epsilon")
		samples = flag.Int("samples", 0, "pin the -epsilon draw budget (0 = sized from epsilon)")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("harecount", buildinfo.Version())
		return
	}
	if *input == "" {
		usageErr("-input is required")
	}
	if _, err := os.Stat(*input); err != nil {
		usageErr("-input: %v", err)
	}
	if *delta <= 0 {
		usageErr("-delta must be > 0 (got %d)", *delta)
	}
	if *workers < 0 {
		usageErr("-workers must be >= 0 (got %d; 0 = all CPUs)", *workers)
	}
	if *loadW < 0 {
		usageErr("-load-workers must be >= 0 (got %d; 0 = all CPUs)", *loadW)
	}
	var spec *hare.MotifSpec
	if *queryF != "" {
		if *only != "" {
			usageErr("-query and -motif are mutually exclusive")
		}
		var err error
		if spec, err = parseQuerySpec(*queryF); err != nil {
			usageErr("-query: %v", err)
		}
	}
	var approx *hare.ApproxOptions
	if *epsilon != 0 || *conf != 0 || *seed != 0 || *samples != 0 {
		if spec == nil {
			usageErr("-epsilon, -conf, -seed and -samples require -query")
		}
		if *epsilon <= 0 || *epsilon >= 1 {
			usageErr("-epsilon must be in (0, 1) (got %v)", *epsilon)
		}
		if *conf < 0 || *conf >= 1 {
			usageErr("-conf must be in (0, 1) (got %v; 0 = 0.95)", *conf)
		}
		if *samples < 0 {
			usageErr("-samples must be >= 0 (got %d)", *samples)
		}
		approx = &hare.ApproxOptions{
			Epsilon:    *epsilon,
			Confidence: *conf,
			Seed:       *seed,
			Samples:    *samples,
			Workers:    *workers,
		}
	}
	if err := run(*input, *delta, *workers, *thrd, *only, spec, approx, *relabel, *comma, *stats, *check, *loadW); err != nil {
		fmt.Fprintln(os.Stderr, "harecount:", err)
		os.Exit(1)
	}
}

// usageErr reports a flag-validation failure with usage text and exits 2.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "harecount: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// parseQuerySpec accepts both spec forms the server does: a leading '{'
// selects the JSON encoding, anything else the compact text grammar.
func parseQuerySpec(q string) (*hare.MotifSpec, error) {
	if strings.HasPrefix(strings.TrimSpace(q), "{") {
		return hare.ParseSpecJSON([]byte(q))
	}
	return hare.ParseSpec(q)
}

func run(input string, delta int64, workers, thrd int, only string, spec *hare.MotifSpec, approx *hare.ApproxOptions, relabel, comma, stats, check bool, loadWorkers int) error {
	g, err := hare.LoadFile(input, hare.LoadOptions{Relabel: relabel, Comma: comma, Workers: loadWorkers})
	if err != nil {
		return err
	}
	if check {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	if stats {
		st := hare.ComputeStats(g, 20)
		fmt.Printf("nodes=%d edges=%d self-loops-dropped=%d timespan=%d maxdeg=%d meandeg=%.2f gini=%.3f\n",
			st.Nodes, st.Edges, st.SelfLoops, st.TimeSpan, st.MaxDegree, st.MeanDegree, st.DegreeGini)
	}
	opts := []hare.Option{hare.WithWorkers(workers)}
	if thrd != 0 {
		opts = append(opts, hare.WithDegreeThreshold(thrd))
	}
	if spec != nil {
		start := time.Now()
		if approx != nil {
			res, err := hare.CountMotifApprox(g, spec, delta, *approx)
			if err != nil {
				return err
			}
			fmt.Printf("%s ≈ %.1f [%.1f, %.1f] at %g%% confidence (%d draws, %d/%d strata exact, in %v)\n",
				spec.Canonical(), res.Total.Estimate, res.Total.Low, res.Total.High,
				res.Confidence*100, res.Draws, res.ExactStrata, res.Strata,
				time.Since(start).Round(time.Microsecond))
			return nil
		}
		n, err := hare.CountMotif(g, spec, delta, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("%s = %d (in %v)\n", spec.Canonical(), n, time.Since(start).Round(time.Microsecond))
		return nil
	}
	var label hare.Label
	if only != "" {
		label, err = hare.ParseLabel(only)
		if err != nil {
			return err
		}
		opts = append(opts, hare.WithOnly(label.Category()))
	}
	res, err := hare.Count(g, delta, opts...)
	if err != nil {
		return err
	}
	if only != "" {
		fmt.Printf("%s = %d (in %v, %d workers)\n", label, res.Matrix.At(label), res.Elapsed, res.Workers)
		return nil
	}
	res.Matrix.Write(os.Stdout)
	fmt.Printf("counted in %v with %d workers\n", res.Elapsed, res.Workers)
	return nil
}
