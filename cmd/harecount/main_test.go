package main

// Process-level checks for the -query flag: a spec counted through the
// real binary prints the canonical spelling and the exact count, and
// every flag-validation failure — bad spec included — exits 2 with usage
// text, the convention the other commands follow. Skipped under -short
// (each case execs the compiled binary).

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildHarecount compiles the command once per test into a temp dir.
func buildHarecount(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "harecount")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// triangleFile writes one temporal triangle: 0→1→2→0 within δ=600.
func triangleFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "edges.txt")
	if err := os.WriteFile(path, []byte("0 1 10\n1 2 20\n2 0 30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestQueryFlagCountsAndCanonicalizes(t *testing.T) {
	if testing.Short() {
		t.Skip("binary e2e skipped under -short")
	}
	bin := buildHarecount(t)
	edges := triangleFile(t)
	// A rotated spelling of the triangle: the output must carry the
	// canonical form and the exact count (one instance in this file).
	out, err := exec.Command(bin, "-input", edges, "-delta", "600",
		"-query", "y->z, z->x, x->y").CombinedOutput()
	if err != nil {
		t.Fatalf("harecount -query: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "a->b; b->c; c->a = 1") {
		t.Errorf("output missing canonical spec and count:\n%s", out)
	}
	// The JSON form takes the same path.
	out, err = exec.Command(bin, "-input", edges, "-delta", "600",
		"-query", `{"edges":[{"src":"a","dst":"b"},{"src":"b","dst":"c"},{"src":"c","dst":"a"}]}`).CombinedOutput()
	if err != nil || !strings.Contains(string(out), "= 1") {
		t.Errorf("JSON spec: %v\n%s", err, out)
	}
}

// TestEpsilonFlagEstimates drives -epsilon: on a graph this small the plan
// saturates, so the estimate prints as the exact count with a zero-width
// interval — and the flag surface validates like every other flag.
func TestEpsilonFlagEstimates(t *testing.T) {
	if testing.Short() {
		t.Skip("binary e2e skipped under -short")
	}
	bin := buildHarecount(t)
	edges := triangleFile(t)
	out, err := exec.Command(bin, "-input", edges, "-delta", "600",
		"-query", "a->b; b->c; c->a", "-epsilon", "0.05", "-seed", "7").CombinedOutput()
	if err != nil {
		t.Fatalf("harecount -epsilon: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "a->b; b->c; c->a ≈ 1.0 [1.0, 1.0]") {
		t.Errorf("output missing saturated estimate:\n%s", out)
	}
	if !strings.Contains(string(out), "95% confidence") {
		t.Errorf("output missing confidence level:\n%s", out)
	}
}

func TestQueryFlagValidationExitsTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("binary e2e skipped under -short")
	}
	bin := buildHarecount(t)
	edges := triangleFile(t)
	cases := [][]string{
		{"-input", edges, "-query", "a->a; a->b; b->a"},                  // self-loop
		{"-input", edges, "-query", "nonsense"},                          // syntax
		{"-input", edges, "-query", "a->b; b->c"},                        // too few edges
		{"-input", edges, "-query", "a->b; b->c; c->a", "-motif", "M26"}, // exclusive flags
		{"-input", edges, "-epsilon", "0.05"},                            // epsilon without -query
		{"-input", edges, "-query", "a->b; b->c; c->a", "-epsilon", "2"}, // epsilon out of range
		{"-input", edges, "-query", "a->b; b->c; c->a", "-epsilon", "0.05", "-conf", "1"},
		{"-input", edges, "-query", "a->b; b->c; c->a", "-seed", "3"}, // seed without epsilon
	}
	for _, args := range cases {
		out, err := exec.Command(bin, args...).CombinedOutput()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 2 {
			t.Errorf("harecount %v: want exit 2, got %v\n%s", args, err, out)
			continue
		}
		if !strings.Contains(string(out), "Usage") && !strings.Contains(string(out), "-query") {
			t.Errorf("harecount %v: rejection missing usage text:\n%s", args, out)
		}
	}
}
