// Command harebench regenerates the paper's evaluation tables and figures
// on the synthetic dataset suite.
//
// Usage:
//
//	harebench -exp table3                       # one experiment
//	harebench -exp all -scale 0.25              # the whole evaluation
//	harebench -exp fig11 -datasets wikitalk,sms-a -threads 1,2,4,8
//
// Experiments: table2, table3, fig9, fig10, fig11, fig12a, fig12b, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hare/internal/bench"
	"hare/internal/temporal"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (see package doc)")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor")
		delta    = flag.Int64("delta", 600, "δ in seconds")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default: the experiment's paper set)")
		threads  = flag.String("threads", "1,2,4,8,16,32", "comma-separated thread sweep")
		seed     = flag.Int64("seed", 0, "seed offset for the generated datasets")
	)
	flag.Parse()
	ths, err := parseInts(*threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "harebench: -threads:", err)
		os.Exit(2)
	}
	opts := bench.Options{
		Out:     os.Stdout,
		Scale:   *scale,
		Delta:   temporal.Timestamp(*delta),
		Threads: ths,
		Seed:    *seed,
	}
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}
	if err := bench.Run(*exp, opts); err != nil {
		fmt.Fprintln(os.Stderr, "harebench:", err)
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
