// Command harebench regenerates the paper's evaluation tables and figures
// on the synthetic dataset suite, or emits a machine-readable benchmark
// report.
//
// Usage:
//
//	harebench -exp table3                       # one experiment
//	harebench -exp all -scale 0.25              # the whole evaluation
//	harebench -exp fig11 -datasets wikitalk,sms-a -threads 1,2,4,8
//	harebench -json -scale 0.05 -count 5 -out BENCH.json
//	harebench -compare -old baseline/bench.txt -new bench.txt
//
// Experiments: table2, table3, fig9, fig10, fig11, fig12a, fig12b, all.
// With -json the experiment selection is ignored and a JSON report with
// per-dataset ingest/count edges/sec, ns/op and steady-state allocs per
// center is written to -out (stdout by default). With -compare two
// `go test -bench` output files are compared with an exact permutation
// test and the command exits 1 on any statistically significant ns/op
// regression beyond -max-regress percent — the CI performance fence.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hare/internal/bench"
	"hare/internal/buildinfo"
	"hare/internal/temporal"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (see package doc)")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor (> 0)")
		delta    = flag.Int64("delta", 600, "δ in seconds (> 0)")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default: the experiment's paper set)")
		threads  = flag.String("threads", "1,2,4,8,16,32", "comma-separated thread sweep (each >= 1)")
		seed     = flag.Int64("seed", 0, "seed offset for the generated datasets")
		jsonOut  = flag.Bool("json", false, "emit the machine-readable benchmark report instead of an experiment")
		count    = flag.Int("count", 3, "json mode: best-of repetitions per measurement (>= 1)")
		outPath  = flag.String("out", "", "json mode: output file (default stdout)")
		loadW    = flag.Int("load-workers", 0, "json mode: parallel-loader workers for the load measurements (0 = all CPUs)")
		compare  = flag.Bool("compare", false, "compare mode: fence two `go test -bench` output files instead of benchmarking")
		oldPath  = flag.String("old", "", "compare mode: baseline bench output file (required)")
		newPath  = flag.String("new", "", "compare mode: current bench output file (required)")
		alpha    = flag.Float64("alpha", 0.05, "compare mode: significance level of the permutation test")
		maxReg   = flag.Float64("max-regress", 15, "compare mode: fail on significant slowdowns above this percent")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("harebench", buildinfo.Version())
		return
	}
	if *compare {
		if *oldPath == "" || *newPath == "" {
			usageErr("-compare requires -old and -new")
		}
		if *alpha <= 0 || *alpha >= 1 {
			usageErr("-alpha must be in (0,1) (got %g)", *alpha)
		}
		if *maxReg < 0 {
			usageErr("-max-regress must be >= 0 (got %g)", *maxReg)
		}
		if err := bench.Fence(os.Stdout, *oldPath, *newPath, *alpha, *maxReg); err != nil {
			fmt.Fprintln(os.Stderr, "harebench:", err)
			os.Exit(1)
		}
		return
	}
	if *scale <= 0 {
		usageErr("-scale must be > 0 (got %g)", *scale)
	}
	if *delta <= 0 {
		usageErr("-delta must be > 0 (got %d)", *delta)
	}
	if *count < 1 {
		usageErr("-count must be >= 1 (got %d)", *count)
	}
	ths, err := parseInts(*threads)
	if err != nil {
		usageErr("-threads: %v", err)
	}
	for _, th := range ths {
		if th < 1 {
			usageErr("-threads entries must be >= 1 (got %d)", th)
		}
	}
	if *loadW < 0 {
		usageErr("-load-workers must be >= 0 (got %d; 0 = all CPUs)", *loadW)
	}
	opts := bench.Options{
		Out:         os.Stdout,
		Scale:       *scale,
		Delta:       temporal.Timestamp(*delta),
		Threads:     ths,
		Seed:        *seed,
		LoadWorkers: *loadW,
	}
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}
	if *jsonOut {
		var w io.Writer = os.Stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "harebench:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := bench.WriteJSON(w, opts, *count); err != nil {
			fmt.Fprintln(os.Stderr, "harebench:", err)
			os.Exit(1)
		}
		return
	}
	if err := bench.Run(*exp, opts); err != nil {
		fmt.Fprintln(os.Stderr, "harebench:", err)
		os.Exit(1)
	}
}

// usageErr reports a flag-validation failure with usage text and exits 2,
// matching the flag package's own misuse convention.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "harebench: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
