// Command hareconvert converts temporal graph files between the text
// edge-list format and the binary .hare snapshot format (docs/FORMAT.md).
// The direction is inferred from the file extensions: ".hare" (or
// ".hare.gz") means snapshot, anything else edge list, ".gz" gzipped.
//
// Usage:
//
//	hareconvert [-relabel] [-comma] [-workers N] input.txt[.gz] output.hare
//	hareconvert input.hare output.txt.gz
//	hareconvert -verify input.hare
//
// The typical use is snapshotting a dataset once so every later hared
// start mmaps it in without parsing:
//
//	hareconvert -relabel wiki-talk.txt.gz wiki-talk.hare
//	hared -data wiki=wiki-talk.hare
//
// -verify loads the input (checking every snapshot checksum and structural
// invariant, or fully parsing a text file) and prints its stats without
// writing anything.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hare"
	"hare/internal/buildinfo"
)

func main() {
	var (
		relabel = flag.Bool("relabel", false, "relabel arbitrary node ids in text input to a dense space")
		comma   = flag.Bool("comma", false, "treat commas as field separators in text input")
		workers = flag.Int("workers", 0, "parallel text-ingestion workers (0 = all CPUs)")
		verify  = flag.Bool("verify", false, "load and validate the input, print stats, write nothing")
		quiet   = flag.Bool("quiet", false, "suppress the summary line")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("hareconvert", buildinfo.Version())
		return
	}
	if *workers < 0 {
		usageErr("-workers must be >= 0 (got %d; 0 = all CPUs)", *workers)
	}
	args := flag.Args()
	switch {
	case *verify && len(args) == 1:
	case !*verify && len(args) == 2:
	default:
		usageErr("want INPUT OUTPUT (or -verify INPUT), got %d arguments", len(args))
	}

	opts := hare.LoadOptions{Relabel: *relabel, Comma: *comma, Workers: *workers}
	t0 := time.Now()
	g, err := hare.LoadFile(args[0], opts)
	if err != nil {
		fail("load %s: %v", args[0], err)
	}
	loadTime := time.Since(t0)
	if *verify {
		// Snapshot loading already checked every checksum and the
		// crash-safety invariants; -verify adds the full cross-consistency
		// pass (half-edge times and endpoints against the edge columns).
		if err := g.Validate(); err != nil {
			fail("verify %s: %v", args[0], err)
		}
		fmt.Printf("%s: OK — %d nodes, %d edges (%d self-loops dropped) in %v\n",
			args[0], g.NumNodes(), g.NumEdges(), g.SelfLoopsDropped(), loadTime.Round(time.Millisecond))
		return
	}
	t1 := time.Now()
	if err := hare.SaveFile(args[1], g); err != nil {
		fail("save %s: %v", args[1], err)
	}
	if !*quiet {
		fmt.Printf("%s -> %s: %d nodes, %d edges (load %v, write %v)\n",
			args[0], args[1], g.NumNodes(), g.NumEdges(),
			loadTime.Round(time.Millisecond), time.Since(t1).Round(time.Millisecond))
	}
}

// usageErr reports a flag-validation failure with usage text and exits 2.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hareconvert: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hareconvert: "+format+"\n", args...)
	os.Exit(1)
}
