// Command harestream counts δ-temporal motifs over an edge stream read from
// stdin (or a file), printing periodic snapshots — the online counterpart of
// harecount for live pipelines:
//
//	tail -f transactions.log | harestream -delta 600 -every 100000
//	harestream -input edges.txt -delta 600 -watch M26 -every 50000
//
// Input is one "u v t" edge per line in non-decreasing time order.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hare"
)

func main() {
	var (
		input = flag.String("input", "-", "edge stream file ('-' = stdin)")
		delta = flag.Int64("delta", 600, "time window δ")
		every = flag.Int("every", 100_000, "print a snapshot every N edges (0 = only at EOF)")
		watch = flag.String("watch", "", "report only this motif (e.g. M26)")
	)
	flag.Parse()
	if err := run(*input, *delta, *every, *watch); err != nil {
		fmt.Fprintln(os.Stderr, "harestream:", err)
		os.Exit(1)
	}
}

func run(input string, delta int64, every int, watch string) error {
	var r io.Reader = os.Stdin
	if input != "-" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var label hare.Label
	if watch != "" {
		var err error
		label, err = hare.ParseLabel(watch)
		if err != nil {
			return err
		}
	}
	sc, err := hare.NewStream(delta)
	if err != nil {
		return err
	}

	snapshot := func() {
		m := sc.Matrix()
		if watch != "" {
			fmt.Printf("edges=%d %s=%d\n", sc.Edges(), label, m.At(label))
			return
		}
		fmt.Printf("edges=%d pairs=%d stars=%d triangles=%d total=%d\n",
			sc.Edges(),
			m.CategoryTotal(hare.CategoryPair),
			m.CategoryTotal(hare.CategoryStar),
			m.CategoryTotal(hare.CategoryTri),
			m.Total())
	}

	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for scan.Scan() {
		lineNo++
		line := strings.TrimSpace(scan.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return fmt.Errorf("line %d: want 'u v t'", lineNo)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return fmt.Errorf("line %d: bad source: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return fmt.Errorf("line %d: bad target: %v", lineNo, err)
		}
		t, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: bad timestamp: %v", lineNo, err)
		}
		if err := sc.Add(hare.NodeID(u), hare.NodeID(v), t); err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if every > 0 && sc.Edges()%every == 0 {
			snapshot()
		}
	}
	if err := scan.Err(); err != nil {
		return err
	}
	snapshot()
	return nil
}
