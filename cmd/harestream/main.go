// Command harestream counts δ-temporal motifs over an edge stream read from
// stdin (or a file), printing periodic snapshots — the online counterpart of
// harecount for live pipelines:
//
//	tail -f transactions.log | harestream -delta 600 -every 100000
//	harestream -input edges.txt -delta 600 -watch M26 -every 50000
//	harestream -input edges.txt -delta 600 -sliding -workers 8
//	harestream -input backfill.txt -delta 600 -load-workers 8
//
// Input is one "u v t" edge per line in non-decreasing time order. Edges
// are ingested in batches fanned out over worker goroutines; -sliding
// additionally reports the counts of the last δ window at each snapshot.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hare"
	"hare/internal/buildinfo"
)

func main() {
	var (
		input   = flag.String("input", "-", "edge stream file ('-' = stdin)")
		delta   = flag.Int64("delta", 600, "time window δ")
		every   = flag.Int("every", 100_000, "print a snapshot every N edges, to batch granularity (0 = only at EOF)")
		watch   = flag.String("watch", "", "report only this motif (e.g. M26)")
		workers = flag.Int("workers", 0, "ingest worker goroutines (0 = GOMAXPROCS)")
		batch   = flag.Int("batch", 0, "edges per ingest batch (0 = default)")
		sliding = flag.Bool("sliding", false, "track the last-δ window, not just cumulative totals")
		loadW   = flag.Int("load-workers", 0, "parse the input with N goroutines (0/1 = sequential; chunked, so best for file replays, not live pipes)")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("harestream", buildinfo.Version())
		return
	}
	if *delta <= 0 {
		usageErr("-delta must be > 0 (got %d)", *delta)
	}
	if *workers < 0 {
		usageErr("-workers must be >= 0 (got %d; 0 = GOMAXPROCS)", *workers)
	}
	if *every < 0 {
		usageErr("-every must be >= 0 (got %d)", *every)
	}
	if *batch < 0 {
		usageErr("-batch must be >= 0 (got %d)", *batch)
	}
	if *loadW < 0 {
		usageErr("-load-workers must be >= 0 (got %d)", *loadW)
	}
	if *input != "-" {
		if _, err := os.Stat(*input); err != nil {
			usageErr("-input: %v", err)
		}
	}
	if err := run(*input, *delta, *every, *watch, *workers, *batch, *loadW, *sliding); err != nil {
		fmt.Fprintln(os.Stderr, "harestream:", err)
		os.Exit(1)
	}
}

// usageErr reports a flag-validation failure with usage text and exits 2.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "harestream: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func run(input string, delta int64, every int, watch string, workers, batch, loadWorkers int, sliding bool) error {
	var r io.Reader = os.Stdin
	if input != "-" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var label hare.Label
	if watch != "" {
		var err error
		label, err = hare.ParseLabel(watch)
		if err != nil {
			return err
		}
	}
	mode := hare.StreamCumulative
	if sliding {
		mode = hare.StreamSliding
	}
	sc, err := hare.NewStreamCounter(hare.StreamOptions{Delta: delta, Mode: mode, Workers: workers})
	if err != nil {
		return err
	}

	snapshot := func() {
		m := sc.Matrix()
		if watch != "" {
			fmt.Printf("edges=%d %s=%d", sc.Edges(), label, m.At(label))
		} else {
			fmt.Printf("edges=%d pairs=%d stars=%d triangles=%d total=%d",
				sc.Edges(),
				m.CategoryTotal(hare.CategoryPair),
				m.CategoryTotal(hare.CategoryStar),
				m.CategoryTotal(hare.CategoryTri),
				m.Total())
		}
		if sliding {
			w, err := sc.WindowMatrix()
			if err == nil {
				if watch != "" {
					fmt.Printf(" window:%s=%d", label, w.At(label))
				} else {
					fmt.Printf(" window=%d", w.Total())
				}
			}
		}
		fmt.Println()
	}

	// Snapshots fire on batch boundaries, so a snapshot interval finer than
	// the batch size would silently coarsen to it: shrink the batch to keep
	// the -every contract, and say so when that trades away parallel ingest.
	if every > 0 && (batch <= 0 || batch > every) {
		batch = min(every, hare.StreamFeedBatch)
	}
	if batch > 0 && batch < hare.StreamMinParallelBatch && workers != 1 {
		fmt.Fprintf(os.Stderr,
			"harestream: note: batches of %d edges (< %d) ingest sequentially; raise -every/-batch for parallel throughput\n",
			batch, hare.StreamMinParallelBatch)
	}
	lastSnap := 0
	_, err = sc.Feed(r, hare.StreamFeedOptions{
		BatchSize:    batch,
		ParseWorkers: loadWorkers,
		OnBatch: func(c *hare.StreamCounter, _ int) {
			if every > 0 && c.Edges()-lastSnap >= every {
				lastSnap = c.Edges()
				snapshot()
			}
		},
	})
	if err != nil {
		return err
	}
	snapshot()
	return nil
}
