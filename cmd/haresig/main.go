// Command haresig tests the statistical significance of δ-temporal motif
// counts against randomised null models (Milo et al., Science 2002): it
// counts motifs in the input graph and in N randomised reference samples,
// then reports per-motif z-scores and empirical p-values. Samples are drawn
// and counted in parallel; a fixed -seed gives bit-identical results at any
// -workers value.
//
// Usage:
//
//	haresig -input edges.txt [-delta 600] [-model time-shuffle] [-samples 20]
//	        [-seed 0] [-workers 0] [-top 10] [-json] [-relabel] [-comma]
//	        [-load-workers 0]
//
// Models: time-shuffle (permutes timestamps; isolates temporal structure)
// and degree-rewire (rewires targets; isolates wiring structure). With
// -json a machine-readable report with all 36 motifs is written to stdout;
// otherwise the -top motifs by |z| are printed as a table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"hare"
	"hare/internal/buildinfo"
)

func main() {
	var (
		input   = flag.String("input", "", "edge-list file (required; .gz ok)")
		delta   = flag.Int64("delta", 600, "time window δ in the input's time units")
		model   = flag.String("model", "time-shuffle", "null model: time-shuffle or degree-rewire")
		samples = flag.Int("samples", 20, "number of null samples (>= 1)")
		seed    = flag.Int64("seed", 0, "RNG seed for the deterministic sample chain")
		workers = flag.Int("workers", 0, "worker goroutines (0 = all CPUs; never changes results)")
		top     = flag.Int("top", 10, "text mode: motifs to list, ranked by |z| (>= 1)")
		jsonOut = flag.Bool("json", false, "emit a machine-readable JSON report for all 36 motifs")
		relabel = flag.Bool("relabel", false, "relabel arbitrary node ids to a dense space")
		comma   = flag.Bool("comma", false, "treat commas as field separators")
		loadW   = flag.Int("load-workers", 0, "parallel ingestion workers (0 = all CPUs)")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("haresig", buildinfo.Version())
		return
	}
	if *input == "" {
		usageErr("-input is required")
	}
	if _, err := os.Stat(*input); err != nil {
		usageErr("-input: %v", err)
	}
	if *delta <= 0 {
		usageErr("-delta must be > 0 (got %d)", *delta)
	}
	m, err := hare.ParseNullModel(*model)
	if err != nil {
		usageErr("-model: %v", err)
	}
	if *samples < 1 {
		usageErr("-samples must be >= 1 (got %d)", *samples)
	}
	if *workers < 0 {
		usageErr("-workers must be >= 0 (got %d; 0 = all CPUs)", *workers)
	}
	if *top < 1 {
		usageErr("-top must be >= 1 (got %d)", *top)
	}
	if *loadW < 0 {
		usageErr("-load-workers must be >= 0 (got %d; 0 = all CPUs)", *loadW)
	}
	if err := run(*input, *delta, m, *samples, *seed, *workers, *top, *jsonOut, *relabel, *comma, *loadW); err != nil {
		fmt.Fprintln(os.Stderr, "haresig:", err)
		os.Exit(1)
	}
}

// usageErr reports a flag-validation failure with usage text and exits 2.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "haresig: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func run(input string, delta int64, model hare.NullModel, samples int, seed int64,
	workers, top int, jsonOut, relabel, comma bool, loadWorkers int) error {
	g, err := hare.LoadFile(input, hare.LoadOptions{Relabel: relabel, Comma: comma, Workers: loadWorkers})
	if err != nil {
		return err
	}
	rep, err := hare.Significance(g, delta, hare.SignificanceOptions{
		Model: model, Trials: samples, Seed: seed, Workers: workers,
	})
	if err != nil {
		return err
	}
	if jsonOut {
		return writeJSON(os.Stdout, g, delta, seed, rep)
	}
	fmt.Printf("model=%v samples=%d seed=%d workers=%d delta=%d nodes=%d edges=%d\n",
		rep.Model, rep.Trials, seed, rep.Workers, delta, g.NumNodes(), g.NumEdges())
	fmt.Printf("%-6s %12s %14s %12s %10s %8s\n", "motif", "real", "null mean", "null std", "z", "p")
	for _, lc := range rep.TopSignificant(top) {
		l := lc.Label
		p := rep.PUpperAt(l)
		if rep.ZScore(l) < 0 {
			p = rep.PLowerAt(l)
		}
		fmt.Printf("%-6s %12d %14.2f %12.2f %10s %8.4f\n",
			l, lc.Count, rep.MeanAt(l), rep.StdAt(l), fmtZ(rep.ZScore(l)), p)
	}
	return nil
}

// fmtZ renders a z-score compactly, keeping ±Inf readable.
func fmtZ(z float64) string {
	if math.IsInf(z, 1) {
		return "+inf"
	}
	if math.IsInf(z, -1) {
		return "-inf"
	}
	return fmt.Sprintf("%+.2f", z)
}

// jsonMotif is one motif's statistics. Z is omitted (with ZInf carrying the
// sign) when the null has zero variance and the real count differs —
// encoding/json cannot represent ±Inf.
type jsonMotif struct {
	Label  string   `json:"label"`
	Real   uint64   `json:"real"`
	Mean   float64  `json:"mean"`
	Std    float64  `json:"std"`
	Z      *float64 `json:"z,omitempty"`
	ZInf   string   `json:"z_inf,omitempty"`
	PUpper float64  `json:"p_upper"`
	PLower float64  `json:"p_lower"`
}

type jsonReport struct {
	Model        string      `json:"model"`
	Samples      int         `json:"samples"`
	Seed         int64       `json:"seed"`
	Workers      int         `json:"workers"`
	DeltaSeconds int64       `json:"delta_seconds"`
	Nodes        int         `json:"nodes"`
	Edges        int         `json:"edges"`
	Motifs       []jsonMotif `json:"motifs"`
}

func writeJSON(w *os.File, g *hare.Graph, delta, seed int64, rep *hare.SignificanceReport) error {
	out := jsonReport{
		Model:        rep.Model.String(),
		Samples:      rep.Trials,
		Seed:         seed,
		Workers:      rep.Workers,
		DeltaSeconds: delta,
		Nodes:        g.NumNodes(),
		Edges:        g.NumEdges(),
	}
	for _, l := range hare.AllLabels() {
		m := jsonMotif{
			Label:  l.String(),
			Real:   rep.Real.At(l),
			Mean:   rep.MeanAt(l),
			Std:    rep.StdAt(l),
			PUpper: rep.PUpperAt(l),
			PLower: rep.PLowerAt(l),
		}
		switch z := rep.ZScore(l); {
		case math.IsInf(z, 1):
			m.ZInf = "+"
		case math.IsInf(z, -1):
			m.ZInf = "-"
		default:
			m.Z = &z
		}
		out.Motifs = append(out.Motifs, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
