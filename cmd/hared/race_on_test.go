//go:build race

package main

// raceEnabled makes the e2e build the child hared binary with the race
// detector whenever the test binary itself runs under -race, so the CI
// race job exercises the whole cluster race-instrumented.
const raceEnabled = true
