package main

// Multi-process cluster e2e: builds the real hared binary, boots two
// -role worker processes and a -role coordinator on ephemeral ports
// (port 0, discovered from the startup log line), and diffs every /v1
// endpoint against a single-node process over the same deterministic
// synthetic dataset. This is the process-level companion to the
// in-process cluster test in internal/shard — it additionally covers
// flag parsing, the worker mux, the coordinator /metrics merge and
// real TCP between processes. Skipped under -short; the CI race job
// runs it with a race-built binary.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

const e2eDataset = "collegemsg:0.03"

// buildHared compiles the daemon once per test binary into a temp dir,
// with the race detector when the test itself runs under -race.
func buildHared(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hared")
	args := []string{"build"}
	if raceEnabled {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, ".")
	cmd := exec.Command("go", args...)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

var listenRE = regexp.MustCompile(`listening on ([^ ]+) with`)

// startHared launches one hared process and waits for its startup log
// line, returning the base URL of the resolved ephemeral address.
func startHared(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("hared %v never logged its listen address", args)
		return ""
	}
}

// getNormalized fetches one query and strips elapsed_ms, the only
// legitimately nondeterministic response field.
func getNormalized(t *testing.T, base, path string) string {
	t.Helper()
	var lastErr error
	for i := 0; i < 50; i++ { // the process may still be binding handlers
		resp, err := http.Get(base + path)
		if err != nil {
			lastErr = err
			time.Sleep(100 * time.Millisecond)
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, data)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		delete(m, "elapsed_ms")
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	t.Fatalf("GET %s never succeeded: %v", path, lastErr)
	return ""
}

// TestMultiProcessCluster is the ISSUE acceptance run at process level:
// a real 2-worker cluster answers byte-identically to a single node.
func TestMultiProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped under -short")
	}
	bin := buildHared(t)
	gen := "-gen"
	single := startHared(t, bin, gen, e2eDataset)
	w1 := startHared(t, bin, "-role", "worker", gen, e2eDataset)
	w2 := startHared(t, bin, "-role", "worker", gen, e2eDataset)
	peers := strings.TrimPrefix(w1, "http://") + "," + strings.TrimPrefix(w2, "http://")
	coord := startHared(t, bin, "-role", "coordinator", "-peers", peers, gen, e2eDataset)

	queries := []string{
		fmt.Sprintf("/v1/count?dataset=%s&delta=600", e2eDataset),
		fmt.Sprintf("/v1/count?dataset=%s&delta=600&motif=M26", e2eDataset),
		fmt.Sprintf("/v1/star4?dataset=%s&delta=600", e2eDataset),
		fmt.Sprintf("/v1/path4?dataset=%s&delta=600", e2eDataset),
		fmt.Sprintf("/v1/sig?dataset=%s&delta=600&samples=5&seed=3", e2eDataset),
	}
	for _, q := range queries {
		want := getNormalized(t, single, q)
		if got := getNormalized(t, coord, q); got != want {
			t.Errorf("%s: cluster diverges from single node\n got %s\nwant %s", q, got, want)
		}
	}

	// Role reporting and the merged metrics page: the coordinator scrape
	// must include the scatter-layer counters next to the service ones.
	var health struct {
		Role string `json:"role"`
	}
	resp, err := http.Get(coord + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Role != "coordinator" {
		t.Errorf("/healthz role = %q, want coordinator", health.Role)
	}
	mresp, err := http.Get(coord + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"hared_requests_total", "hared_shard_requests_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("coordinator /metrics missing %s:\n%s", want, metrics)
		}
	}
}

// TestRoleFlagValidation rejects nonsense role/peers combinations fast,
// before any graph loads.
func TestRoleFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped under -short")
	}
	bin := buildHared(t)
	cases := [][]string{
		{"-role", "boss", "-gen", e2eDataset},
		{"-role", "coordinator", "-gen", e2eDataset},             // no -peers
		{"-role", "worker", "-peers", "x:1", "-gen", e2eDataset}, // peers without coordinator
		{"-role", "coordinator", "-peers", "://bad url", "-gen", e2eDataset},
	}
	for _, args := range cases {
		out, err := exec.Command(bin, args...).CombinedOutput()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 2 {
			t.Errorf("hared %v: want exit 2, got %v\n%s", args, err, out)
		}
	}
}
