// Command hared is the HARE query daemon: a long-lived HTTP service that
// loads each named dataset once, shares the immutable graph across
// requests, caches results in an LRU keyed by canonicalized request with
// singleflight deduplication, and bounds concurrent counting jobs with a
// worker-budget admission controller.
//
// Usage:
//
//	hared -listen :8315 -data wiki=wiki.txt.gz -data sms=sms.txt
//	hared -listen :8315 -data wiki=wiki.hare    # binary snapshot, mmapped
//	hared -listen :8315 -gen collegemsg:0.2 -gen wikitalk:0.05
//	hared -listen :8315 -live events:600          # mutable live dataset
//	hared -version
//
// Scale-out (docs/SHARDING.md): workers expose the shard wire protocol
// next to the public API; a coordinator scatters each query across its
// -peers and gathers the exact single-node answer:
//
//	hared -role worker -listen :8316 -gen wikitalk:0.05
//	hared -role worker -listen :8317 -gen wikitalk:0.05
//	hared -role coordinator -listen :8315 -gen wikitalk:0.05 \
//	      -peers localhost:8316,localhost:8317
//
// Dataset files may be text edge lists (".gz" transparent) or binary
// `.hare` snapshots (see docs/FORMAT.md) which load without parsing; a
// text path automatically prefers a "<path>.hare" sibling snapshot when
// one exists, including under -preload.
//
// Endpoints (GET unless noted, JSON):
//
//	/v1/count?dataset=wiki&delta=600[&motif=M26][&workers=4][&thrd=100]
//	/v1/star4?dataset=wiki&delta=600      4-node star motifs
//	/v1/path4?dataset=wiki&delta=600      4-node path motifs
//	/v1/sig?dataset=wiki&delta=600&model=time-shuffle&samples=20&seed=1
//	/v1/ingest?dataset=events             POST a text edge list to a -live dataset
//	/v1/watch?dataset=events[&motif=M65][&z=4]   SSE significance alerts
//	/v1/datasets                          registered datasets
//	/healthz                              liveness + version
//	/metrics                              Prometheus text metrics
//
// Live datasets (-live name[:delta], docs/LIVE.md) are mutable: every
// accepted /v1/ingest batch advances a monotonic version, cached query
// results are keyed on it (stale answers die on append), and /v1/watch
// streams z-score alerts when sliding-window motif counts spike against
// their trailing baseline.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hare"
	"hare/internal/buildinfo"
	"hare/internal/gen"
	"hare/internal/shard"
)

// repeatable collects every occurrence of a repeatable string flag.
type repeatable []string

func (r *repeatable) String() string     { return strings.Join(*r, ",") }
func (r *repeatable) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var dataFlags, genFlags, liveFlags repeatable
	var (
		listen    = flag.String("listen", ":8315", "listen address")
		cacheSize = flag.Int("cache", 1024, "result-cache capacity in entries (negative = disable)")
		budget    = flag.Int("budget", 0, "admission worker budget (0 = all CPUs)")
		maxGraphs = flag.Int("max-graphs", 0, "max resident dataset graphs, LRU-evicted beyond (0 = unbounded)")
		relabel   = flag.Bool("relabel", false, "relabel arbitrary node ids in -data files to a dense space")
		comma     = flag.Bool("comma", false, "treat commas as field separators in -data files")
		loadW     = flag.Int("load-workers", 0, "parallel ingestion workers per dataset load (0 = all CPUs)")
		preload   = flag.Bool("preload", false, "load every dataset at startup instead of on first request")
		version   = flag.Bool("version", false, "print version and exit")

		role         = flag.String("role", "single", `cluster role: "single", "coordinator" or "worker" (docs/SHARDING.md)`)
		peers        = flag.String("peers", "", "comma-separated worker base URLs (coordinator only)")
		shardTimeout = flag.Duration("shard-timeout", 30*time.Second, "per-attempt timeout for one shard sub-request (coordinator only)")
		shardRetries = flag.Int("shard-retries", 2, "retries per failed shard sub-request, rotating peers (coordinator only)")
		shardBackoff = flag.Duration("shard-backoff", 50*time.Millisecond, "initial retry backoff, doubling per attempt (coordinator only)")
		hedgeAfter   = flag.Duration("hedge-after", 0, "duplicate a straggling shard onto the next peer after this delay, 0 = off (coordinator only)")
	)
	flag.Var(&dataFlags, "data", "dataset as name=path (edge list, .gz, or .hare snapshot; repeatable)")
	flag.Var(&genFlags, "gen", "synthetic dataset as name[:scale] from the built-in suite (repeatable)")
	flag.Var(&liveFlags, "live", "mutable live dataset as name[:delta] fed by /v1/ingest (delta = sliding watch window, default 600; repeatable)")
	flag.Parse()
	if *version {
		fmt.Println("hared", buildinfo.Version())
		return
	}
	if len(dataFlags) == 0 && len(genFlags) == 0 && len(liveFlags) == 0 {
		usageErr("at least one -data, -gen or -live dataset is required")
	}
	if *loadW < 0 {
		usageErr("-load-workers must be >= 0 (got %d; 0 = all CPUs)", *loadW)
	}
	if *budget < 0 {
		usageErr("-budget must be >= 0 (got %d; 0 = all CPUs)", *budget)
	}
	if *maxGraphs < 0 {
		usageErr("-max-graphs must be >= 0 (got %d; 0 = unbounded)", *maxGraphs)
	}
	if *role != "single" && *role != "coordinator" && *role != "worker" {
		usageErr(`-role must be "single", "coordinator" or "worker" (got %q)`, *role)
	}
	if (*peers != "") != (*role == "coordinator") {
		usageErr("-peers is required for -role coordinator and meaningless otherwise")
	}
	if *shardRetries < 0 {
		usageErr("-shard-retries must be >= 0 (got %d)", *shardRetries)
	}

	opts := hare.ServerOptions{
		CacheSize:       *cacheSize,
		WorkerBudget:    *budget,
		MaxLoadedGraphs: *maxGraphs,
		Version:         buildinfo.Version(),
		Role:            *role,
	}
	// The coordinator swaps the in-process counting backend for the
	// scatter/gather client; caching and admission stay on this side.
	var shardClient *shard.Client
	if *role == "coordinator" {
		pol := shard.Policy{
			Timeout:    *shardTimeout,
			Retries:    *shardRetries,
			Backoff:    *shardBackoff,
			HedgeAfter: *hedgeAfter,
		}
		if *shardRetries == 0 {
			pol.Retries = -1 // Policy treats 0 as "default"; the flag means none
		}
		var err error
		shardClient, err = shard.NewClient(strings.Split(*peers, ","), pol, nil)
		if err != nil {
			usageErr("-peers: %v", err)
		}
		opts.Backend = shard.NewCoordinator(shardClient)
	}
	srv, err := hare.NewServer(opts)
	if err != nil {
		log.Fatalf("hared: %v", err)
	}
	loadOpts := hare.LoadOptions{Relabel: *relabel, Comma: *comma, Workers: *loadW}
	var names []string
	for _, d := range dataFlags {
		name, path, ok := strings.Cut(d, "=")
		if !ok || name == "" || path == "" {
			usageErr("-data must be name=path (got %q)", d)
		}
		if _, err := os.Stat(path); err != nil {
			usageErr("-data %s: %v", name, err)
		}
		// FileLoader prefers a "<path>.hare" sibling snapshot (mmapped,
		// zero-parse) when one exists, and falls back to text — logged —
		// when a snapshot is corrupt or from a newer format version. The
		// sourced registration surfaces which branch won via /v1/datasets.
		if err := srv.RegisterSourced(name, "graph file "+path, hare.FileLoader(path, loadOpts, log.Printf)); err != nil {
			usageErr("%v", err)
		}
		names = append(names, name)
	}
	for _, spec := range genFlags {
		name, cfg, err := genConfig(spec)
		if err != nil {
			usageErr("-gen %s: %v", spec, err)
		}
		c := cfg
		if err := srv.RegisterSourced(name, fmt.Sprintf("synthetic %s (%d nodes, %d edges)", cfg.Name, cfg.Nodes, cfg.Edges),
			func() (*hare.Graph, string, error) { g, err := gen.Generate(c); return g, "synthetic", err }); err != nil {
			usageErr("%v", err)
		}
		names = append(names, name)
	}
	for _, spec := range liveFlags {
		name, delta, err := liveConfig(spec)
		if err != nil {
			usageErr("-live %s: %v", spec, err)
		}
		d, err := hare.NewLiveDataset(name, hare.LiveOptions{Delta: delta})
		if err != nil {
			usageErr("-live %s: %v", spec, err)
		}
		if err := srv.RegisterLive(d, fmt.Sprintf("live dataset (delta %d)", delta)); err != nil {
			usageErr("%v", err)
		}
		names = append(names, name)
	}
	if *preload {
		for _, name := range names {
			t0 := time.Now()
			g, err := srv.Preload(name)
			if err != nil {
				log.Fatalf("hared: preload %s: %v", name, err)
			}
			log.Printf("loaded %s: %d nodes, %d edges in %v", name, g.NumNodes(), g.NumEdges(), time.Since(t0).Round(time.Millisecond))
		}
	}

	handler := srv.Handler()
	switch *role {
	case "worker":
		// A worker serves the shard wire protocol next to the public API,
		// counting with the same in-process backend a single node uses.
		w := &shard.Worker{Graphs: srv, Backend: hare.LocalBackend(), Version: buildinfo.Version()}
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.Handle(shard.PathCompute, w.Handler())
		mux.Handle(shard.PathInfo, w.Handler())
		handler = mux
	case "coordinator":
		// Append the scatter-side shard metrics to the service /metrics
		// page so one scrape covers both layers.
		inner := handler
		mux := http.NewServeMux()
		mux.Handle("/", inner)
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			inner.ServeHTTP(w, r)
			shardClient.Metrics().Write(w)
		})
		handler = mux
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("hared: %v", err)
	}
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		// The resolved address matters when -listen used port 0 (tests,
		// supervisors): it is the only place the real port appears.
		log.Printf("hared %s (%s) listening on %s with %d dataset(s): %s",
			buildinfo.Version(), *role, ln.Addr(), len(names), strings.Join(names, ", "))
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatalf("hared: %v", err)
		}
	}()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("hared: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("hared: shutdown: %v", err)
	}
}

// genConfig parses a -gen spec "name[:scale]" into a scaled dataset config.
// The registered name is the spec itself: "-gen wikitalk" serves as plain
// "wikitalk", "-gen wikitalk:0.05" as "wikitalk:0.05" — so a scaled graph
// is never mistaken for the full dataset and several scales of one
// generator can be served side by side.
func genConfig(spec string) (string, gen.Config, error) {
	name, scaleStr, hasScale := strings.Cut(spec, ":")
	cfg, err := gen.DatasetByName(name)
	if err != nil {
		return "", gen.Config{}, err
	}
	if !hasScale {
		return name, cfg, nil
	}
	scale, err := strconv.ParseFloat(scaleStr, 64)
	if err != nil || scale <= 0 {
		return "", gen.Config{}, fmt.Errorf("scale must be a positive number (got %q)", scaleStr)
	}
	return spec, gen.Scaled(cfg, scale), nil
}

// liveConfig parses a -live spec "name[:delta]". Unlike -gen, the
// registered name excludes the delta suffix: the window is a property of
// the dataset's watch pipeline, not its identity, and clients ingest by
// plain name.
func liveConfig(spec string) (string, hare.Timestamp, error) {
	name, deltaStr, hasDelta := strings.Cut(spec, ":")
	if name == "" {
		return "", 0, fmt.Errorf("empty dataset name")
	}
	if !hasDelta {
		return name, 600, nil
	}
	delta, err := strconv.ParseInt(deltaStr, 10, 64)
	if err != nil || delta < 0 {
		return "", 0, fmt.Errorf("delta must be a non-negative integer (got %q)", deltaStr)
	}
	return name, hare.Timestamp(delta), nil
}

// usageErr reports a flag-validation failure with usage text and exits 2.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hared: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
