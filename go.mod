module hare

go 1.24
