// Cross-algorithm identity on the columnar CSR layout: every counting path
// (sequential FAST, parallel HARE, online stream — sequential and batched)
// must produce bit-identical matrices to the brute-force oracle on both
// uniform-random and hub-skewed graphs, including heavy timestamp ties.
package hare_test

import (
	"math/rand"
	"testing"

	"hare/internal/brute"
	"hare/internal/engine"
	"hare/internal/fast"
	"hare/internal/motif"
	"hare/internal/stream"
	"hare/internal/temporal"
)

// crossRandomGraph draws a uniform multigraph with frequent timestamp ties.
func crossRandomGraph(r *rand.Rand, nodes, edges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges)
	for i := 0; i < edges; i++ {
		u := temporal.NodeID(r.Intn(nodes))
		v := temporal.NodeID(r.Intn(nodes))
		_ = b.AddEdge(u, v, r.Int63n(span)) // self-loops dropped by the builder
	}
	return b.Build()
}

// crossHubGraph concentrates most edges on a couple of hub nodes.
func crossHubGraph(r *rand.Rand, leaves, edges int, span int64) *temporal.Graph {
	b := temporal.NewBuilder(edges)
	for i := 0; i < edges; i++ {
		hub := temporal.NodeID(r.Intn(2))
		other := temporal.NodeID(2 + r.Intn(leaves))
		if r.Intn(5) == 0 {
			other = 1 - hub // hub-hub multi-edges
		}
		if r.Intn(2) == 0 {
			_ = b.AddEdge(hub, other, r.Int63n(span))
		} else {
			_ = b.AddEdge(other, hub, r.Int63n(span))
		}
	}
	return b.Build()
}

// streamMatrix replays the graph's chronological edges through the online
// counter (sequentially or batched) and returns the final matrix.
func streamMatrix(t *testing.T, g *temporal.Graph, delta int64, batched bool) motif.Matrix {
	t.Helper()
	var c *stream.Counter
	var err error
	if batched {
		c, err = stream.NewCounter(stream.Options{Delta: delta, Workers: 4})
	} else {
		c, err = stream.New(delta)
	}
	if err != nil {
		t.Fatal(err)
	}
	src, dst, ts := g.Src(), g.Dst(), g.Times()
	if batched {
		edges := make([]temporal.Edge, len(ts))
		for i := range edges {
			edges[i] = temporal.Edge{From: src[i], To: dst[i], Time: ts[i]}
		}
		for lo := 0; lo < len(edges); lo += 300 {
			hi := min(lo+300, len(edges))
			if err := c.AddBatch(edges[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
	} else {
		for i := range ts {
			if err := c.Add(src[i], dst[i], ts[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c.Matrix()
}

func checkAllPathsMatchBrute(t *testing.T, g *temporal.Graph, delta int64) {
	t.Helper()
	want := brute.Count(g, delta)

	if got := fast.Count(g, delta).ToMatrix(); !got.Equal(&want) {
		t.Fatalf("δ=%d: FAST differs from brute at %v", delta, got.Diff(&want))
	}
	if got := engine.Count(g, delta, engine.Options{Workers: 4}).ToMatrix(); !got.Equal(&want) {
		t.Fatalf("δ=%d: HARE differs from brute at %v", delta, got.Diff(&want))
	}
	if got := engine.Count(g, delta, engine.Options{Workers: 3, DegreeThreshold: 2}).ToMatrix(); !got.Equal(&want) {
		t.Fatalf("δ=%d: HARE (intra-node) differs from brute at %v", delta, got.Diff(&want))
	}
	if got := streamMatrix(t, g, delta, false); !got.Equal(&want) {
		t.Fatalf("δ=%d: stream differs from brute at %v", delta, got.Diff(&want))
	}
	if got := streamMatrix(t, g, delta, true); !got.Equal(&want) {
		t.Fatalf("δ=%d: batched stream differs from brute at %v", delta, got.Diff(&want))
	}
}

func TestAllCountingPathsMatchBruteRandom(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 12; trial++ {
		g := crossRandomGraph(r, 3+r.Intn(10), 30+r.Intn(120), int64(1+r.Intn(40)))
		checkAllPathsMatchBrute(t, g, int64(r.Intn(30)))
	}
}

func TestAllCountingPathsMatchBruteHubSkewed(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 8; trial++ {
		g := crossHubGraph(r, 2+r.Intn(12), 40+r.Intn(200), int64(1+r.Intn(25)))
		checkAllPathsMatchBrute(t, g, int64(1+r.Intn(20)))
	}
}
